type stage_stat = {
  mean_us : float;
  p50_us : int;
  p95_us : int;
  p99_us : int;
  p999_us : int;
}

type t = {
  committed : int;
  aborts : (string * int) list;
  counters : (string * int) list;
  throughput_tps : float;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  lat_p999_us : int;
  stages : (string * float) list;
  stage_stats : (string * stage_stat) list;
}

let abort_count r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.aborts
let abort r label = try List.assoc label r.aborts with Not_found -> 0
let counter r label = try List.assoc label r.counters with Not_found -> 0

let pp fmt r =
  Format.fprintf fmt
    "%.0f txn/s (n=%d, aborts=%d), lat mean=%.2f ms p50=%.2f p95=%.2f \
     p99=%.2f p999=%.2f"
    r.throughput_tps r.committed (abort_count r)
    (r.lat_mean_us /. 1000.0)
    (float_of_int r.lat_p50_us /. 1000.0)
    (float_of_int r.lat_p95_us /. 1000.0)
    (float_of_int r.lat_p99_us /. 1000.0)
    (float_of_int r.lat_p999_us /. 1000.0)

let empty_stat = { mean_us = 0.0; p50_us = 0; p95_us = 0; p99_us = 0;
                   p999_us = 0 }

let hist_stats metrics name =
  match Sim.Metrics.latency metrics name with
  | None -> empty_stat
  | Some h ->
      if Sim.Stats.Histogram.count h = 0 then empty_stat
      else
        { mean_us = Sim.Stats.Histogram.mean h;
          p50_us = Sim.Stats.Histogram.percentile h 50.0;
          p95_us = Sim.Stats.Histogram.percentile h 95.0;
          p99_us = Sim.Stats.Histogram.percentile h 99.0;
          p999_us = Sim.Stats.Histogram.percentile h 99.9 }

let extract ~metrics ~measure_us ~committed_key ~latency_key ~abort_keys
    ~counter_keys ~stage_keys =
  let committed = Sim.Metrics.get metrics committed_key in
  let lat = hist_stats metrics latency_key in
  (* Stages with no samples (e.g. planner stages outside the planned
     compute mode) would show as 0 µs rows in every breakdown; drop them
     so the stage list reflects what the run actually exercised. *)
  let stage_stats =
    List.filter_map
      (fun (label, key) ->
        match Sim.Metrics.latency metrics key with
        | Some h when Sim.Stats.Histogram.count h > 0 ->
            Some (label, hist_stats metrics key)
        | _ -> None)
      stage_keys
  in
  { committed;
    aborts =
      List.map
        (fun (label, key) -> (label, Sim.Metrics.get metrics key))
        abort_keys;
    counters =
      List.map
        (fun (label, key) -> (label, Sim.Metrics.get metrics key))
        counter_keys;
    throughput_tps = float_of_int committed *. 1e6 /. float_of_int measure_us;
    lat_mean_us = lat.mean_us;
    lat_p50_us = lat.p50_us;
    lat_p95_us = lat.p95_us;
    lat_p99_us = lat.p99_us;
    lat_p999_us = lat.p999_us;
    stages = List.map (fun (label, s) -> (label, s.mean_us)) stage_stats;
    stage_stats }
