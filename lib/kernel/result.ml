type t = {
  committed : int;
  aborts : (string * int) list;
  counters : (string * int) list;
  throughput_tps : float;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  stages : (string * float) list;
}

let abort_count r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.aborts
let abort r label = try List.assoc label r.aborts with Not_found -> 0
let counter r label = try List.assoc label r.counters with Not_found -> 0

let pp fmt r =
  Format.fprintf fmt
    "%.0f txn/s (n=%d, aborts=%d), lat mean=%.2f ms p50=%.2f p95=%.2f p99=%.2f"
    r.throughput_tps r.committed (abort_count r)
    (r.lat_mean_us /. 1000.0)
    (float_of_int r.lat_p50_us /. 1000.0)
    (float_of_int r.lat_p95_us /. 1000.0)
    (float_of_int r.lat_p99_us /. 1000.0)

let hist_stats metrics name =
  match Sim.Metrics.latency metrics name with
  | None -> (0.0, 0, 0, 0)
  | Some h ->
      if Sim.Stats.Histogram.count h = 0 then (0.0, 0, 0, 0)
      else
        ( Sim.Stats.Histogram.mean h,
          Sim.Stats.Histogram.percentile h 50.0,
          Sim.Stats.Histogram.percentile h 95.0,
          Sim.Stats.Histogram.percentile h 99.0 )

let stage_mean metrics name =
  match Sim.Metrics.latency metrics name with
  | None -> 0.0
  | Some h -> Sim.Stats.Histogram.mean h

let extract ~metrics ~measure_us ~committed_key ~latency_key ~abort_keys
    ~counter_keys ~stage_keys =
  let committed = Sim.Metrics.get metrics committed_key in
  let mean, p50, p95, p99 = hist_stats metrics latency_key in
  { committed;
    aborts =
      List.map
        (fun (label, key) -> (label, Sim.Metrics.get metrics key))
        abort_keys;
    counters =
      List.map
        (fun (label, key) -> (label, Sim.Metrics.get metrics key))
        counter_keys;
    throughput_tps = float_of_int committed *. 1e6 /. float_of_int measure_us;
    lat_mean_us = mean;
    lat_p50_us = p50;
    lat_p95_us = p95;
    lat_p99_us = p99;
    stages =
      List.map
        (fun (label, key) -> (label, stage_mean metrics key))
        stage_keys }
