(** Measurement-window results, engine-agnostic.

    Aborts and auxiliary counters are labelled association lists driven
    by the engine's declared metric keys ({!Intf.ENGINE}), so engines
    with different abort taxonomies (ALOHA's install/compute split,
    2PL's give-ups) report faithfully through one type. *)

type stage_stat = {
  mean_us : float;
  p50_us : int;
  p95_us : int;
  p99_us : int;
  p999_us : int;
}

type t = {
  committed : int;
  aborts : (string * int) list;  (** per-abort-class counts, by label *)
  counters : (string * int) list;
      (** extra engine counters (restarts, lock timeouts, …) *)
  throughput_tps : float;
  lat_mean_us : float;
  lat_p50_us : int;
  lat_p95_us : int;
  lat_p99_us : int;
  lat_p999_us : int;
  stages : (string * float) list;
      (** (stage name, mean µs); ALOHA: install / wait / processing;
          Calvin: sequencing / lock+read / processing.  Kept as the
          simple mean view; {!field-stage_stats} has the full breakdown. *)
  stage_stats : (string * stage_stat) list;
      (** per-stage latency breakdown including tail percentiles *)
}

val abort_count : t -> int
(** Total aborts across all classes. *)

val abort : t -> string -> int
(** Count for one abort label; 0 when absent. *)

val counter : t -> string -> int
(** Value of one auxiliary counter; 0 when absent. *)

val pp : Format.formatter -> t -> unit

val extract :
  metrics:Sim.Metrics.t ->
  measure_us:int ->
  committed_key:string ->
  latency_key:string ->
  abort_keys:(string * string) list ->
  counter_keys:(string * string) list ->
  stage_keys:(string * string) list ->
  t
(** Read a result out of a cluster's metrics after the measurement
    window.  Key lists are [(label, metric key)] pairs. *)
