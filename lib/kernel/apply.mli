(** Pure interpreter for a static {!Txn.desc} write list.

    Engines that execute transactions as deterministic stored procedures
    (Calvin-style locking, 2PL) ship the encoded write list as the
    procedure argument and call {!writes} inside one generic procedure,
    instead of hand-writing a procedure per workload transaction.

    Semantics match the ALOHA compute engine on the overlapping ops: all
    reads observe pre-transaction state (sibling writes are not visible,
    exactly as ALOHA functors read strictly below the transaction's
    version) and arithmetic built-ins treat an absent key as 0. *)

val writes :
  registry:Functor_cc.Registry.t ->
  version:int ->
  reads:(string * Functor_cc.Value.t option) list ->
  (string * Txn.op) list ->
  (string * Functor_cc.Value.t) list option
(** Evaluate each op against [reads] (the pre-state of the union read
    set).  [None] when any handler aborts or is unregistered — the caller
    decides what "abort" means for an engine that cannot abort.  Raises
    [Invalid_argument] on ops with no static form ([Delete],
    [Dep_delete]). *)
