(** Engine-neutral transaction descriptions.

    A transaction is a list of per-key operations plus an optional set of
    precondition keys.  The [op] type mirrors the ALOHA functor forms
    (§IV): blind puts/deletes, commutative arithmetic updates, registry
    [Call]s with an explicit read set, and determinate [Det] functors
    whose handler resolves deferred writes to the declared dependent keys
    (§IV-E).

    Because deterministic engines (Calvin-style locking, 2PL) must know
    the complete write set before execution, a transaction carries {e two
    facets}:

    - [functor_form] — the description as ALOHA installs it, where a
      [Det] op may decide {e at evaluation time} which dependents to
      write;
    - [static_form] — an equivalent description whose write set is fully
      static (no [Det]), forced lazily only when a static engine runs the
      transaction.  Generators that need engine-specific pre-assignment
      (e.g. TPC-C order ids drawn from a per-district counter) do it
      inside the lazy thunk.

    For the common case where the description is already static,
    {!make} uses one description for both facets. *)

module Value = Functor_cc.Value

type op =
  | Put of Value.t
  | Delete
  | Add of int
  | Subtr of int
  | Max of int
  | Min of int
  | Call of {
      handler : string;
      read_set : string list;
      args : Value.t list;
    }
  | Det of {
      handler : string;
      read_set : string list;
      args : Value.t list;
      dependents : string list;
    }

type desc = {
  writes : (string * op) list;
  precondition_keys : string list;
      (** keys whose handlers gate the whole transaction (all-or-nothing
          abort, §IV-C); engines without functor aborts ignore them *)
}

type t

type stage = [ `Install | `Compute ]

type reply =
  | Ok
  | Aborted of stage
      (** [`Install]: rejected before execution (e.g. ALOHA buffer
          overflow, 2PL lock timeout); [`Compute]: a handler decided to
          abort. *)

val desc : ?precondition_keys:string list -> (string * op) list -> desc

val make : ?precondition_keys:string list -> (string * op) list -> t
(** A transaction whose description is already static: both facets are
    the same description. *)

val dual : functor_form:desc -> static_form:desc Lazy.t -> t
(** A transaction with distinct facets.  The lazy static facet is forced
    at most once, by the first static engine that submits it. *)

val functor_form : t -> desc
val static_form : t -> desc

val read_set : desc -> string list
(** Sorted, deduplicated keys the description reads: arithmetic ops read
    their own key; [Call]/[Det] read their declared read sets. *)

val write_keys : desc -> string list
(** Sorted, deduplicated keys the description may write, including [Det]
    dependents. *)

val encode_writes : (string * op) list -> Value.t
(** Encode a write list as a {!Value.t} so it can be shipped as the
    argument of a single generic stored procedure. *)

val decode_writes : Value.t -> (string * op) list
(** Inverse of {!encode_writes}.  Raises [Invalid_argument] on malformed
    input. *)
