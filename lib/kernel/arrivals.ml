type t =
  | Open_poisson of { rate_per_fe : float }
  | Open_burst of { rate_per_fe : float; period_us : int }
  | Closed of { clients_per_fe : int }
  | Scripted of { arrivals : (int * int) list }

let nothing () = ()

(* Knuth's method; fine for the per-epoch means used here (< ~10^4). *)
let poisson rng ~mean =
  if mean <= 0.0 then 0
  else if mean > 50.0 then begin
    (* Normal approximation for large means, clamped at zero. *)
    let u1 = Sim.Rng.float rng 1.0 and u2 = Sim.Rng.float rng 1.0 in
    let u1 = if u1 <= 0.0 then 1e-12 else u1 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let v = int_of_float (Float.round (mean +. (z *. sqrt mean))) in
    if v < 0 then 0 else v
  end
  else begin
    let l = exp (-.mean) in
    let rec go k p =
      let p = p *. Sim.Rng.float rng 1.0 in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.0
  end

let install ~sim ~rng ~n_fes ~arrival ~submit =
  match arrival with
  | Open_poisson { rate_per_fe } ->
      if rate_per_fe <= 0.0 then invalid_arg "Arrivals: rate";
      let mean_gap_us = 1e6 /. rate_per_fe in
      let start fe =
        let frng = Sim.Rng.split rng in
        let rec next () =
          let gap =
            int_of_float (Sim.Rng.exponential frng ~mean:mean_gap_us)
          in
          Sim.Engine.after sim (max 1 gap) (fun () ->
              submit ~fe ~done_k:nothing;
              next ())
        in
        next ()
      in
      for fe = 0 to n_fes - 1 do
        start fe
      done
  | Open_burst { rate_per_fe; period_us } ->
      if rate_per_fe <= 0.0 || period_us <= 0 then invalid_arg "Arrivals";
      let mean = rate_per_fe *. float_of_int period_us /. 1e6 in
      let start fe =
        let frng = Sim.Rng.split rng in
        let rec tick () =
          let k = poisson frng ~mean in
          for _ = 1 to k do
            submit ~fe ~done_k:nothing
          done;
          Sim.Engine.after sim period_us tick
        in
        Sim.Engine.after sim 1 tick
      in
      for fe = 0 to n_fes - 1 do
        start fe
      done
  | Closed { clients_per_fe } ->
      if clients_per_fe <= 0 then invalid_arg "Arrivals: clients";
      for fe = 0 to n_fes - 1 do
        for _ = 1 to clients_per_fe do
          let rec client () = submit ~fe ~done_k:client in
          (* Stagger initial submissions within the first millisecond so
             closed-loop clients do not arrive as one impulse. *)
          Sim.Engine.after sim (Sim.Rng.int rng 1000) client
        done
      done
  | Scripted { arrivals } ->
      List.iter
        (fun (at_us, fe) ->
          if at_us < 0 || fe < 0 || fe >= n_fes then
            invalid_arg "Arrivals: scripted entry";
          Sim.Engine.after sim (max 1 at_us) (fun () ->
              submit ~fe ~done_k:nothing))
        arrivals
