(** The generic client loop: install an arrival process on a started
    cluster, run a warm-up window, reset the metrics, run a measurement
    window, and extract a {!Result.t} through the engine's declared
    metric keys.

    This is the single place that owns warmup/measure policy; every
    harness entry point (CLI, figures, benches, tests) goes through it
    regardless of engine. *)

val run :
  (module Intf.ENGINE with type cluster = 'c) ->
  cluster:'c ->
  gen:(fe:int -> Txn.t) ->
  arrival:Arrivals.t ->
  ?on_reply:(fe:int -> Txn.reply -> unit) ->
  ?obs:Obs.Ctl.t ->
  ?warmup_us:int ->
  ?measure_us:int ->
  ?seed:int ->
  unit ->
  Result.t
(** The cluster must already be created, loaded and started.
    [on_reply] observes every completion (chaos invariant checking:
    counting replies proves no submission was lost).  [obs], when given,
    arms its gauge sampler over the whole run and discards trace/gauge
    data accumulated during warm-up at the measurement boundary — pass
    the same handle the cluster was built with. *)

module Make (E : Intf.ENGINE) : sig
  val run :
    cluster:E.cluster ->
    gen:(fe:int -> Txn.t) ->
    arrival:Arrivals.t ->
    ?on_reply:(fe:int -> Txn.reply -> unit) ->
    ?obs:Obs.Ctl.t ->
    ?warmup_us:int ->
    ?measure_us:int ->
    ?seed:int ->
    unit ->
    Result.t
end
