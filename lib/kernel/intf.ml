(** The two signatures the kernel composes: a concurrency-control
    {!ENGINE} and a {!WORKLOAD}.

    An engine packs an existing cluster implementation behind a uniform
    surface: create / register handlers / bulk load / start / submit,
    plus the metric-key constants the generic driver needs to extract a
    {!Result.t}.  A workload is a pure description: handler registration,
    initial data, and a request generator producing engine-neutral
    {!Txn.t} values.  [Run.Make (E)] owns everything in between. *)

module type ENGINE = sig
  val name : string
  (** CLI / report identifier, e.g. ["aloha"]. *)

  type cluster

  val create : ?seed:int -> Params.t -> cluster
  (** Build a stopped cluster.  Handlers may be registered and data
      loaded before {!start}. *)

  val register : cluster -> string -> Functor_cc.Registry.handler -> unit
  (** Register a named stored-procedure fragment.  Raises
      [Invalid_argument] on duplicate names. *)

  val load : cluster -> string -> Functor_cc.Value.t -> unit
  (** Bulk-load one key before {!start}. *)

  val start : cluster -> unit
  val stop : cluster -> unit
  (** [stop] is a quiesce hook; the simulated engines treat it as a
      no-op. *)

  val sim : cluster -> Sim.Engine.t
  val metrics : cluster -> Sim.Metrics.t
  val n_servers : cluster -> int

  val submit : cluster -> fe:int -> Txn.t -> k:(Txn.reply -> unit) -> unit
  (** Submit through frontend [fe]; [k] fires exactly once when the
      transaction commits or gives up. *)

  val read_committed : cluster -> string -> Functor_cc.Value.t option
  (** Latest committed value of a key (simulation-global read, for
      checks and differential tests; not part of the transaction path). *)

  (** {2 Metric keys}

      The generic driver extracts results through these names instead of
      hardcoding per-engine strings, so an engine whose aborts live under
      e.g. ["twopl.given_up"] reports them faithfully. *)

  val committed_key : string
  val latency_key : string

  val abort_keys : (string * string) list
  (** [(label, metric key)] per abort class; empty when the engine cannot
      abort (deterministic stored procedures). *)

  val counter_keys : (string * string) list
  (** Additional per-engine counters worth surfacing (restarts, lock
      timeouts, …). *)

  val stage_keys : (string * string) list
  (** [(label, latency histogram key)] for the stage breakdown
      (Fig. 10). *)
end

type packed = Pack : (module ENGINE with type cluster = 'c) -> packed

module type WORKLOAD = sig
  val name : string

  type cfg

  val register :
    cfg -> register:(string -> Functor_cc.Registry.handler -> unit) -> unit
  (** Install the workload's handlers through the engine's [register]. *)

  val load :
    cfg ->
    n_servers:int ->
    put:(string -> Functor_cc.Value.t -> unit) ->
    unit
  (** Emit the initial database through [put]. *)

  val generator : cfg -> n_servers:int -> seed:int -> fe:int -> Txn.t
  (** A stateful request generator (partial application of the first
      three arguments); deterministic for a given seed. *)
end
