(** Client load generation.

    Four arrival processes cover the paper's experiments and the test
    suite:

    - {!Open_poisson}: independent Poisson arrivals per frontend — the
      standard open-loop load for throughput-vs-latency sweeps (Fig. 6)
      and light-load latency measurements (Fig. 10, 11);
    - {!Open_burst}: the whole period's arrivals land at the start of each
      period.  This reproduces the open-source Calvin artifact the paper
      notes in Fig. 11 ("generates most of the transactions at the
      beginning of the epoch"), which is why Calvin's latency slope vs
      epoch duration is ~1 while ALOHA-DB's is ~0.5;
    - {!Closed}: a fixed number of clients per frontend, each resubmitting
      on completion — saturates the system for peak-throughput points
      (Fig. 7, 8, 9);
    - {!Scripted}: an explicit list of [(time_us, frontend)] submission
      events — deterministic histories for differential tests. *)

type t =
  | Open_poisson of { rate_per_fe : float }  (** transactions/s per FE *)
  | Open_burst of { rate_per_fe : float; period_us : int }
  | Closed of { clients_per_fe : int }
  | Scripted of { arrivals : (int * int) list }
      (** each entry [(at_us, fe)] submits one request from frontend [fe]
          at simulated time [at_us] (clamped to ≥ 1) *)

val install :
  sim:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  n_fes:int ->
  arrival:t ->
  submit:(fe:int -> done_k:(unit -> unit) -> unit) ->
  unit
(** Start the arrival process.  [submit ~fe ~done_k] must eventually call
    [done_k] exactly once for closed-loop arrivals; open-loop and scripted
    arrivals ignore it. *)
