type t = {
  n_servers : int;
  epoch_us : int option;
      (* epoch / sequencer batch duration; engines without epochs ignore it *)
  faults : Net.Faults.t option;
      (* fault-injection oracle threaded into the cluster's network(s);
         None = fault-free.  Engines may also harden their configuration
         (retries, durability) when faults are present. *)
}

let make ?epoch_us ?faults ~n_servers () = { n_servers; epoch_us; faults }
