type t = {
  n_servers : int;
  epoch_us : int option;
      (* epoch / sequencer batch duration; engines without epochs ignore it *)
}

let make ?epoch_us ~n_servers () = { n_servers; epoch_us }
