type t = {
  n_servers : int;
  epoch_us : int option;
      (* epoch / sequencer batch duration; engines without epochs ignore it *)
  faults : Net.Faults.t option;
      (* fault-injection oracle threaded into the cluster's network(s);
         None = fault-free.  Engines may also harden their configuration
         (retries, durability) when faults are present. *)
  obs : Obs.Ctl.t option;
      (* observability handle: lifecycle tracing + gauge sampling.
         None (the default) compiles the hot paths down to a single
         option test per emit site. *)
  compute : string option;
      (* engine-specific compute-phase selector (e.g. ALOHA's
         "ondemand" / "pool" / "planned"); engines without a compute
         phase ignore it. *)
  runtime : string option;
      (* execution backend: "sim" (default; everything on the simulation
         domain) or "real" (ALOHA evaluates planned functor strata on a
         pool of OCaml 5 worker domains).  Engines without a real
         backend ignore it. *)
  domains : int option;
      (* worker-domain count for the real runtime; None = engine
         default.  Ignored under runtime "sim". *)
  replicas : int option;
      (* replication degree per partition; None/Some 1 = unreplicated.
         Engines without replication ignore it. *)
  fastpath : bool option;
      (* coordination-free commit lane for all-commutative transactions
         (ALOHA's algebraic fast path); None/Some false = off.  Engines
         without such a lane ignore it. *)
}

let make ?epoch_us ?faults ?obs ?compute ?runtime ?domains ?replicas
    ?fastpath ~n_servers () =
  { n_servers; epoch_us; faults; obs; compute; runtime; domains; replicas;
    fastpath }
