module Value = Functor_cc.Value

type op =
  | Put of Value.t
  | Delete
  | Add of int
  | Subtr of int
  | Max of int
  | Min of int
  | Call of {
      handler : string;
      read_set : string list;
      args : Value.t list;
    }
  | Det of {
      handler : string;
      read_set : string list;
      args : Value.t list;
      dependents : string list;
    }

type desc = {
  writes : (string * op) list;
  precondition_keys : string list;
}

type t = {
  functor_form : desc;
  static_form : desc Lazy.t;
}

type stage = [ `Install | `Compute ]

type reply =
  | Ok
  | Aborted of stage

let desc ?(precondition_keys = []) writes = { writes; precondition_keys }

let make ?precondition_keys writes =
  let d = desc ?precondition_keys writes in
  { functor_form = d; static_form = lazy d }

let dual ~functor_form ~static_form = { functor_form; static_form }

let functor_form t = t.functor_form
let static_form t = Lazy.force t.static_form

let read_set d =
  List.concat_map
    (fun (key, op) ->
      match op with
      | Put _ | Delete -> []
      | Add _ | Subtr _ | Max _ | Min _ -> [ key ]
      | Call { read_set; _ } | Det { read_set; _ } -> read_set)
    d.writes
  |> List.sort_uniq String.compare

let write_keys d =
  List.concat_map
    (fun (key, op) ->
      match op with
      | Det { dependents; _ } -> key :: dependents
      | _ -> [ key ])
    d.writes
  |> List.sort_uniq String.compare

(* ---- wire encoding ------------------------------------------------------ *)

(* A [desc]'s write list as a database value, so that engines whose
   stored procedures only take [Value.t] arguments (Calvin, 2PL) can ship
   the whole transaction through one generic interpreter procedure. *)

let strs l = Value.tup (List.map Value.str l)
let to_strs v = List.map Value.to_str (Value.to_tup v)

let encode_op = function
  | Put v -> Value.tup [ Value.str "put"; v ]
  | Delete -> Value.tup [ Value.str "delete" ]
  | Add d -> Value.tup [ Value.str "add"; Value.int d ]
  | Subtr d -> Value.tup [ Value.str "subtr"; Value.int d ]
  | Max d -> Value.tup [ Value.str "max"; Value.int d ]
  | Min d -> Value.tup [ Value.str "min"; Value.int d ]
  | Call { handler; read_set; args } ->
      Value.tup
        [ Value.str "call"; Value.str handler; strs read_set;
          Value.tup args ]
  | Det { handler; read_set; args; dependents } ->
      Value.tup
        [ Value.str "det"; Value.str handler; strs read_set;
          Value.tup args; strs dependents ]

let decode_op v =
  match Value.to_tup v with
  | [ tag; v ] when Value.to_str tag = "put" -> Put v
  | [ tag ] when Value.to_str tag = "delete" -> Delete
  | [ tag; d ] when Value.to_str tag = "add" -> Add (Value.to_int d)
  | [ tag; d ] when Value.to_str tag = "subtr" -> Subtr (Value.to_int d)
  | [ tag; d ] when Value.to_str tag = "max" -> Max (Value.to_int d)
  | [ tag; d ] when Value.to_str tag = "min" -> Min (Value.to_int d)
  | [ tag; handler; read_set; args ] when Value.to_str tag = "call" ->
      Call
        { handler = Value.to_str handler;
          read_set = to_strs read_set;
          args = Value.to_tup args }
  | [ tag; handler; read_set; args; dependents ]
    when Value.to_str tag = "det" ->
      Det
        { handler = Value.to_str handler;
          read_set = to_strs read_set;
          args = Value.to_tup args;
          dependents = to_strs dependents }
  | _ -> invalid_arg "Kernel.Txn.decode_op: malformed op"

let encode_writes writes =
  Value.tup
    (List.map
       (fun (key, op) -> Value.tup [ Value.str key; encode_op op ])
       writes)

let decode_writes v =
  List.map
    (fun entry ->
      match Value.to_tup entry with
      | [ key; op ] -> (Value.to_str key, decode_op op)
      | _ -> invalid_arg "Kernel.Txn.decode_writes: malformed entry")
    (Value.to_tup v)
