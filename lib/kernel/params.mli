(** Engine-neutral deployment parameters.

    The intersection of what every {!Intf.ENGINE} needs to assemble a
    cluster.  Engine-specific tuning (ALOHA's straggler optimisation,
    clock skew, …) stays behind each engine's native [Cluster.create];
    adapters expose it through their own construction helpers. *)

type t = {
  n_servers : int;
  epoch_us : int option;
      (** epoch / sequencer batch duration; engines without epochs ignore
          it *)
  faults : Net.Faults.t option;
      (** fault-injection oracle wired into the cluster's network(s);
          [None] (the default) is fault-free.  Engines that can survive
          faults additionally harden their configuration (retries, WAL
          durability) when this is set. *)
  obs : Obs.Ctl.t option;
      (** observability handle (lifecycle tracing, gauge sampling, fault
          correlation); [None] (the default) keeps every hot path down to
          one option test per emit site. *)
  compute : string option;
      (** engine-specific compute-phase selector (ALOHA accepts
          "ondemand" / "pool" / "planned"); engines without a compute
          phase ignore it *)
  runtime : string option;
      (** execution backend: "sim" (default; single-domain simulation) or
          "real" (ALOHA evaluates planned functor strata on a pool of
          OCaml 5 worker domains, for wall-clock measurements); engines
          without a real backend ignore it *)
  domains : int option;
      (** worker-domain count for the real runtime; [None] leaves the
          engine default.  Ignored under runtime "sim" *)
  replicas : int option;
      (** replication degree per partition (ALOHA ships each partition's
          WAL to [k - 1] follower backends and fails over on crash);
          [None] / [Some 1] = unreplicated.  Engines without replication
          ignore it *)
  fastpath : bool option;
      (** coordination-free commit lane for all-commutative transactions
          (ALOHA acknowledges them at install time instead of waiting for
          epoch close + compute); [None] / [Some false] = off.  Engines
          without such a lane ignore it *)
}

val make :
  ?epoch_us:int -> ?faults:Net.Faults.t -> ?obs:Obs.Ctl.t ->
  ?compute:string -> ?runtime:string -> ?domains:int -> ?replicas:int ->
  ?fastpath:bool -> n_servers:int -> unit -> t
