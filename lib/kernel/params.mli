(** Engine-neutral deployment parameters.

    The intersection of what every {!Intf.ENGINE} needs to assemble a
    cluster.  Engine-specific tuning (ALOHA's straggler optimisation,
    clock skew, …) stays behind each engine's native [Cluster.create];
    adapters expose it through their own construction helpers. *)

type t = {
  n_servers : int;
  epoch_us : int option;
      (** epoch / sequencer batch duration; engines without epochs ignore
          it *)
}

val make : ?epoch_us:int -> n_servers:int -> unit -> t
