(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§V) plus the DESIGN.md ablations, and provides a Bechamel
   micro-benchmark suite for the core primitives.

   Usage:
     dune exec bench/main.exe                -- all figures, quick scale
     dune exec bench/main.exe -- --full      -- all figures, paper scale
     dune exec bench/main.exe -- fig9        -- one figure
     dune exec bench/main.exe -- micro       -- Bechamel micro suite
     dune exec bench/main.exe -- --json ...  -- also write BENCH_micro.json /
                                                BENCH_macro.json in the cwd
     dune exec bench/main.exe -- --json real -- wall-clock domain scaling;
                                                writes BENCH_real.json only
                                                (run it on its own, not mixed
                                                with simulated targets)
     dune exec bench/main.exe -- availability -- committed-work-over-time
                                                under a fixed crash schedule
                                                at k = 1/2/3; always writes
                                                BENCH_availability.json
     dune exec bench/main.exe -- fastpath    -- counter-heavy latency with
                                                the coordination-free lane
                                                off vs on; always writes
                                                BENCH_fastpath.json *)

let micro () =
  let open Bechamel in
  let chain_insert =
    Test.make ~name:"mvstore.chain insert+find (256 versions)"
      (Staged.stage (fun () ->
           let c : int Mvstore.Chain.t = Mvstore.Chain.create () in
           for i = 1 to 256 do
             ignore (Mvstore.Chain.insert c ~version:i i)
           done;
           ignore (Mvstore.Chain.find_le c ~version:128)))
  in
  let ts_gen =
    let e = Sim.Engine.create () in
    let clk = Clocksync.Node_clock.perfect e in
    let src = Clocksync.Ts_source.create clk ~node:1 in
    let hi = ref 1_000_000 in
    Test.make ~name:"clocksync.ts_source next"
      (Staged.stage (fun () ->
           incr hi;
           ignore (Clocksync.Ts_source.next src ~lo:0 ~hi:!hi)))
  in
  let zipf =
    let z = Sim.Zipf.create ~n:1_000_000 ~theta:0.99 in
    let rng = Sim.Rng.create 3 in
    Test.make ~name:"sim.zipf sample"
      (Staged.stage (fun () -> ignore (Sim.Zipf.sample z rng)))
  in
  let lock_manager =
    let keys =
      List.init 10 (fun i -> (Printf.sprintf "k%d" i, Calvin.Lock_manager.Write))
    in
    Test.make ~name:"calvin.lock_manager req+rel (10 keys)"
      (Staged.stage (fun () ->
           let lm = Calvin.Lock_manager.create ~on_ready:(fun _ -> ()) in
           Calvin.Lock_manager.request lm ~uid:1 ~keys;
           Calvin.Lock_manager.release lm ~uid:1))
  in
  let functor_compute =
    Test.make ~name:"functor_cc 64 local ADD computes"
      (Staged.stage (fun () ->
           let registry = Functor_cc.Registry.with_builtins () in
           let callbacks =
             { Functor_cc.Compute_engine.is_local = (fun _ -> true);
               remote_get = (fun ~key:_ ~version:_ k -> k None);
               send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
               send_dep_write = (fun ~key:_ ~version:_ _ -> ());
               notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
               exec = (fun ~cost:_ k -> k ());
               now = (fun () -> 0) }
           in
           let e =
             Functor_cc.Compute_engine.create ~registry ~callbacks
               ~compute_cost_us:0 ~metrics:(Sim.Metrics.create ()) ()
           in
           Functor_cc.Compute_engine.load_initial e ~key:(Mvstore.Key.intern "k")
             (Functor_cc.Value.int 0);
           for v = 1 to 64 do
             ignore
               (Functor_cc.Compute_engine.install e ~key:(Mvstore.Key.intern "k") ~version:v ~lo:0
                  ~hi:max_int
                  (Functor_cc.Funct.mk_pending ~ftype:Functor_cc.Ftype.Add
                     ~farg:(Functor_cc.Funct.farg_args
                              [ Functor_cc.Value.int 1 ])
                     ~txn_id:v ~coordinator:0))
           done;
           Functor_cc.Compute_engine.compute_key e ~key:(Mvstore.Key.intern "k") ~version:64))
  in
  let rng_bench =
    let rng = Sim.Rng.create 9 in
    Test.make ~name:"sim.rng bounded int"
      (Staged.stage (fun () -> ignore (Sim.Rng.int rng 1_000_000)))
  in
  (* Tracer-overhead pair: 64 server-shaped emit sites (a lifecycle
     stage emit plus an epoch-ledger note each) with observability off
     vs attached at the 1-in-16 trace sample rate.  Off is the default
     production path — every site must cost exactly one option test, so
     this pair is the number behind the "tracing off is free" claim.
     Sys.opaque_identity keeps the compiler from folding the None
     branch away. *)
  let tracer_sites obs ledger =
    for i = 0 to 63 do
      (match obs with
      | Some ctl ->
          Obs.Ctl.emit ctl ~txn:i ~stage:Obs.Trace.Submit ~node:0 ~ts:i
            ~arg:(i lsr 4) ()
      | None -> ());
      match ledger with
      | Some l ->
          Obs.Ledger.note_assigned l ~node:0 ~epoch:(i lsr 4);
          if Obs.Ledger.awaiting_first_commit l then
            Obs.Ledger.note_commit l ~node:0 ~t_us:i ~partitions:[ 0 ]
      | None -> ()
    done
  in
  let tracer_off =
    let obs = Sys.opaque_identity (None : Obs.Ctl.t option) in
    let ledger = Sys.opaque_identity (None : Obs.Ledger.t option) in
    Test.make ~name:"obs.tracer 64 emit sites off"
      (Staged.stage (fun () -> tracer_sites obs ledger))
  in
  let tracer_on =
    let l = Obs.Ledger.create ~cfg_epoch_us:10_000 ~nodes:1 ~replicas:1 () in
    let ctl = Obs.Ctl.create ~sample:16 ~ledger:l () in
    let obs = Sys.opaque_identity (Some ctl) in
    let ledger = Sys.opaque_identity (Obs.Ctl.ledger ctl) in
    Test.make ~name:"obs.tracer 64 emit sites 1-in-16"
      (Staged.stage (fun () -> tracer_sites obs ledger))
  in
  (* One closed epoch of 64 keys x 128 pending ADD versions (a
     commutative-heavy epoch: hot counters absorb dozens of blind ADDs
     per epoch), evaluated to completion under each compute mode.
     [exec] routes through the worker pool, so every dispatch job runs
     before any evaluation finalises — the worst case for the pool
     mode's watermark-to-version rescan (quadratic in chain depth) and
     exactly the regime the planner's prepared handles avoid. *)
  let run_epoch ~planned =
    let sim = Sim.Engine.create () in
    let pool = Sim.Worker_pool.create sim ~workers:4 in
    let registry = Functor_cc.Registry.with_builtins () in
    let metrics = Sim.Metrics.create () in
    let callbacks =
      { Functor_cc.Compute_engine.is_local = (fun _ -> true);
        remote_get = (fun ~key:_ ~version:_ k -> k None);
        send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
        send_dep_write = (fun ~key:_ ~version:_ _ -> ());
        notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
        exec = (fun ~cost k -> Sim.Worker_pool.submit pool ~cost k);
        now = (fun () -> Sim.Engine.now sim) }
    in
    let e =
      Functor_cc.Compute_engine.create ~registry ~callbacks
        ~compute_cost_us:1 ~metrics ()
    in
    let proc =
      Functor_cc.Processor.create ~engine:e ~pool ~dispatch_cost_us:1
        ~metrics ()
    in
    let keys =
      Array.init 64 (fun i -> Mvstore.Key.intern (Printf.sprintf "bk%d" i))
    in
    Array.iter
      (fun key ->
        Functor_cc.Compute_engine.load_initial e ~key
          (Functor_cc.Value.int 0))
      keys;
    for v = 1 to 128 do
      Array.iter
        (fun key ->
          ignore
            (Functor_cc.Compute_engine.install e ~key ~version:v ~lo:0
               ~hi:max_int
               (Functor_cc.Funct.mk_pending ~ftype:Functor_cc.Ftype.Add
                  ~farg:(Functor_cc.Funct.farg_args
                           [ Functor_cc.Value.int 1 ])
                  ~txn_id:v ~coordinator:0));
          Functor_cc.Processor.buffer proc ~epoch:1 ~key ~version:v)
        keys
    done;
    if planned then begin
      let planner =
        Functor_cc.Planner.create ~engine:e ~pool ~dispatch_cost_us:1
          ~metrics ()
      in
      let items = Functor_cc.Processor.drain proc ~upto_epoch:1 in
      ignore (Functor_cc.Planner.run planner ~items)
    end
    else Functor_cc.Processor.release proc ~upto_epoch:1;
    Sim.Engine.run sim;
    assert (Functor_cc.Compute_engine.watermark e ~key:keys.(0) = 128)
  in
  let epoch_pool =
    Test.make ~name:"functor_cc epoch 64x128 pool"
      (Staged.stage (fun () -> run_epoch ~planned:false))
  in
  let epoch_planned =
    Test.make ~name:"functor_cc epoch 64x128 planned"
      (Staged.stage (fun () -> run_epoch ~planned:true))
  in
  let tests =
    [ chain_insert; ts_gen; zipf; lock_manager; functor_compute;
      epoch_pool; epoch_planned; rng_bench; tracer_off; tracer_on ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Harness.Report.record_micro ~name ~ns_per_op:est;
              Printf.printf "[micro] %-44s %12.1f ns/op\n%!" name est
          | Some _ | None ->
              Printf.printf "[micro] %-44s (no estimate)\n%!" name)
        analysis)
    tests

(* ---- real-runtime wall clock (BENCH_real.json) --------------------------- *)

(* Wall-clock txn/s of the functor-computing phase on real OCaml 5 domains
   (--runtime real): one closed epoch of commutative ADD-heavy YCSB-style
   updates, planned and evaluated stratum-by-stratum on a Runtime.Pool,
   timed from plan build to last finalisation, at 1/2/4/8 domains.

   Two series, because speedup has two different limiting resources:

   - "cpu-add": built-in ADDs, pure CPU.  Scales with physical cores; on
     a 1-core host this honestly reports ~1x (the pool can interleave but
     not parallelise compute-bound work).
   - "latency-bound": a user functor that blocks ~200us per evaluation (a
     stand-in for the storage/WAL read a production evaluator performs).
     Blocked time overlaps across domains even on 1 core, so this series
     shows the real >=2x stratum-level win everywhere — it is the shape
     ALOHA's compute phase takes whenever evaluation touches storage.

   The host core count is recorded in the JSON so readers can interpret
   the cpu-add series; ci/check_bench_regression.py validates structure
   only and never gates on these machine-dependent numbers. *)
let real_epoch ~domains ~n_keys ~n_ops ~latency_bound =
  let sim = Sim.Engine.create () in
  let pool = Sim.Worker_pool.create sim ~workers:4 in
  let registry = Functor_cc.Registry.with_builtins () in
  Functor_cc.Registry.register registry "sladd" (fun ctx ->
      (* simulated storage read on the evaluation path *)
      Unix.sleepf 0.0002;
      let cur =
        match Functor_cc.Registry.read ctx ctx.Functor_cc.Registry.key with
        | Some v -> Functor_cc.Value.to_int v
        | None -> 0
      in
      Functor_cc.Registry.Commit
        (Functor_cc.Value.int
           (cur + Functor_cc.Value.to_int (Functor_cc.Registry.arg ctx 0))));
  let metrics = Sim.Metrics.create () in
  let callbacks =
    { Functor_cc.Compute_engine.is_local = (fun _ -> true);
      remote_get = (fun ~key:_ ~version:_ k -> k None);
      send_push = (fun ~dst_key:_ ~version:_ ~src_key:_ _ -> ());
      send_dep_write = (fun ~key:_ ~version:_ _ -> ());
      notify_final = (fun ~key:_ ~version:_ ~pending:_ ~final:_ -> ());
      exec = (fun ~cost k -> Sim.Worker_pool.submit pool ~cost k);
      now = (fun () -> Sim.Engine.now sim) }
  in
  let e =
    Functor_cc.Compute_engine.create ~registry ~callbacks ~compute_cost_us:1
      ~metrics ()
  in
  let keys =
    Array.init n_keys (fun i -> Mvstore.Key.intern (Printf.sprintf "rb%d" i))
  in
  Array.iter
    (fun key ->
      Functor_cc.Compute_engine.load_initial e ~key (Functor_cc.Value.int 0))
    keys;
  (* YCSB-style update stream: uniform key choice (YCSB-A shape), one ADD
     per op, versions dense per key in draw order. *)
  let rng = Sim.Rng.create 42 in
  let next_version = Array.make n_keys 0 in
  let items = ref [] in
  for _ = 1 to n_ops do
    let ki = Sim.Rng.int rng n_keys in
    next_version.(ki) <- next_version.(ki) + 1;
    let version = next_version.(ki) in
    let key = keys.(ki) in
    let funct =
      if latency_bound then
        Functor_cc.Funct.mk_pending
          ~ftype:(Functor_cc.Ftype.User "sladd")
          ~farg:
            { Functor_cc.Funct.farg_empty with
              read_set = [ key ];
              args = [ Functor_cc.Value.int 1 ] }
          ~txn_id:version ~coordinator:0
      else
        Functor_cc.Funct.mk_pending ~ftype:Functor_cc.Ftype.Add
          ~farg:(Functor_cc.Funct.farg_args [ Functor_cc.Value.int 1 ])
          ~txn_id:version ~coordinator:0
    in
    (match
       Functor_cc.Compute_engine.install e ~key ~version ~lo:0 ~hi:max_int
         funct
     with
    | Ok () -> ()
    | Error _ -> failwith "bench real: install failed");
    items := { Functor_cc.Processor.key; version } :: !items
  done;
  let rpool = Runtime.Pool.create ~domains in
  let planner =
    Functor_cc.Planner.create ~engine:e ~pool ~real:rpool ~dispatch_cost_us:1
      ~metrics ()
  in
  let t0 = Unix.gettimeofday () in
  ignore (Functor_cc.Planner.run planner ~items:!items);
  Sim.Engine.run sim;
  let wall_s = Unix.gettimeofday () -. t0 in
  Runtime.Pool.shutdown rpool;
  assert (Sim.Metrics.get metrics "plan.real_evaluated" = n_ops);
  wall_s

let real () =
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "[real] host cores: %d\n%!" host_cores;
  let series ~name ~latency_bound ~n_keys ~n_ops =
    let workload =
      Printf.sprintf
        "YCSB-A-style update-only, uniform over %d keys, %d %s/epoch" n_keys
        n_ops
        (if latency_bound then "sladd (200us blocking read)" else "ADD")
    in
    List.iter
      (fun domains ->
        let wall_s = real_epoch ~domains ~n_keys ~n_ops ~latency_bound in
        Harness.Report.record_real ~series:name ~workload ~domains ~wall_s
          ~txns:n_ops;
        Printf.printf "[real] %-14s %d domain(s): %8.4f s  %10.0f txn/s\n%!"
          name domains wall_s
          (float_of_int n_ops /. wall_s))
      [ 1; 2; 4; 8 ]
  in
  series ~name:"cpu-add" ~latency_bound:false ~n_keys:64 ~n_ops:16_384;
  series ~name:"latency-bound" ~latency_bound:true ~n_keys:64 ~n_ops:1_024

(* The latency-collapse figure: one counter-heavy workload (YCSB is 10
   blind ADD-1s per txn — every transaction is all-commutative with an
   empty read set) run twice on ALOHA, coordination-free commit lane off
   and on.  Off, a commit waits for epoch close plus the computing phase
   (~13 ms at the 10 ms epoch); on, it commits at install-ack time, a
   couple of network round trips.  Simulated time, so the numbers are
   deterministic; ci/check_bench_regression.py --validate-fastpath gates
   on the on-p50 beating the off-p50. *)
let fastpath () =
  let aloha =
    match Harness.Setup.engine_of_name "aloha" with
    | Some e -> e
    | None -> assert false
  in
  let measure ~fastpath =
    let built =
      Harness.Setup.ycsb ~engine:aloha ~n:4 ~ci:0.01 ~epoch_us:10_000
        ~fastpath ~seed:7 ()
    in
    Harness.Driver.run built
      ~arrival:(Harness.Arrivals.Closed { clients_per_fe = 4 })
      ~warmup_us:100_000 ~measure_us:1_000_000 ()
  in
  let series =
    List.map
      (fun fastpath ->
        let r = measure ~fastpath in
        let fast_commits =
          match List.assoc_opt "fastpath commits" r.Kernel.Result.counters with
          | Some n -> n
          | None -> 0
        in
        let mode = if fastpath then "on" else "off" in
        Printf.printf
          "[fastpath] %-3s: %6d committed  p50 %6d us  p99 %6d us  (%d via \
           fast lane)\n%!"
          mode r.Kernel.Result.committed r.Kernel.Result.lat_p50_us
          r.Kernel.Result.lat_p99_us fast_commits;
        { Harness.Report.fp_mode = mode;
          fp_committed = r.Kernel.Result.committed;
          fp_tps = r.Kernel.Result.throughput_tps;
          fp_p50_us = r.Kernel.Result.lat_p50_us;
          fp_p99_us = r.Kernel.Result.lat_p99_us;
          fp_fast_commits = fast_commits })
      [ false; true ]
  in
  Harness.Report.write_fastpath ~path:"BENCH_fastpath.json"
    ~workload:"ycsb ci=0.01 n=4, closed loop 4 clients/FE, 10 ADD-1 ops/txn"
    ~series;
  Printf.printf "wrote BENCH_fastpath.json\n%!"

(* The availability figure: one fixed schedule — a primary crashed at
   20ms and kept dark past the run horizon — replayed at replication
   degrees 1, 2 and 3.  At k = 1 the committed curve plateaus the moment
   the crash lands and the run cannot complete; at k >= 2 failover picks
   the partition up within the detection delay and the curve keeps
   climbing to completion.  The driver's own invariants stay enforced for
   the replicated runs (they must pass); the k = 1 run is reported as the
   degraded baseline, violations and all. *)
let availability () =
  let target =
    match Chaos.Driver.target_of_name "aloha" with
    | Some t -> t
    | None -> assert false
  in
  let seed = 42 in
  let schedule =
    { Chaos.Schedule.seed;
      n_servers = 3;
      events =
        [ Chaos.Schedule.Crash
            { node = 1; at_us = 20_000; restart_at_us = 2_000_000 } ] }
  in
  let series =
    List.map
      (fun replicas ->
        let r = Chaos.Driver.run_schedule target ~replicas ~schedule in
        if replicas > 1 && not (Chaos.Driver.passed r) then
          failwith
            (Printf.sprintf "availability: k=%d run violated invariants: %s"
               replicas
               (String.concat "; " r.Chaos.Driver.violations));
        Printf.printf
          "[availability] k=%d: %d/%d committed by horizon (%d samples)\n%!"
          replicas r.Chaos.Driver.committed r.Chaos.Driver.submitted
          (List.length r.Chaos.Driver.availability);
        { Harness.Report.av_replicas = replicas;
          av_engine = "aloha";
          av_seed = seed;
          av_submitted = r.Chaos.Driver.submitted;
          av_completed = r.Chaos.Driver.committed;
          av_points = r.Chaos.Driver.availability })
      [ 1; 2; 3 ]
  in
  let sched_str = Format.asprintf "%a" Chaos.Schedule.pp schedule in
  Harness.Report.write_availability ~path:"BENCH_availability.json"
    ~schedule:sched_str ~series;
  Printf.printf "wrote BENCH_availability.json\n%!"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale =
    if List.mem "--full" args then Harness.Experiments.full
    else Harness.Experiments.quick
  in
  if List.mem "--json" args then Harness.Report.enable ();
  let cmds =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let run_target = function
    | "table1" -> Harness.Experiments.table1 ()
    | "fig6" -> Harness.Experiments.fig6 scale
    | "fig7" -> Harness.Experiments.fig7 scale
    | "fig8" -> Harness.Experiments.fig8 scale
    | "fig9" -> Harness.Experiments.fig9 scale
    | "fig10" -> Harness.Experiments.fig10 scale
    | "fig11" -> Harness.Experiments.fig11 scale
    | "ablation-straggler" -> Harness.Experiments.ablation_straggler scale
    | "ablation-push" -> Harness.Experiments.ablation_push scale
    | "ablation-dependent" -> Harness.Experiments.ablation_dependent scale
    | "ext-conventional" -> Harness.Experiments.ext_conventional scale
    | "micro" -> micro ()
    | "real" -> real ()
    | "availability" -> availability ()
    | "fastpath" -> fastpath ()
    | "all" ->
        Harness.Experiments.all scale;
        micro ()
    | other ->
        Printf.eprintf
          "unknown target %S (expected table1, fig6..fig11, \
           ablation-straggler, ablation-push, ablation-dependent, \
           ext-conventional, micro, real, availability, fastpath, all)\n"
          other;
        exit 2
  in
  let run cmd =
    let t0 = Unix.gettimeofday () in
    run_target cmd;
    Harness.Report.record_fig_time ~fig:cmd
      ~seconds:(Unix.gettimeofday () -. t0)
  in
  (match cmds with
  | [] -> run "all"
  | cmds -> List.iter run cmds);
  if Harness.Report.recording () then
    if Harness.Report.real_recorded () then begin
      (* the real target stands alone: wall-clock numbers go to their own
         file so the simulated micro/macro baselines are never clobbered
         by a machine-dependent run *)
      Harness.Report.write_real
        ~host_cores:(Domain.recommended_domain_count ())
        "BENCH_real.json";
      Printf.printf "wrote BENCH_real.json\n%!"
    end
    else begin
      Harness.Report.write_micro "BENCH_micro.json";
      Harness.Report.write_macro ~scale:scale.Harness.Experiments.label
        "BENCH_macro.json";
      Printf.printf "wrote BENCH_micro.json and BENCH_macro.json\n%!"
    end
